"""Golden-trace regression harness.

Sixteen pinned scenarios - every design (``No_PG``, ``Conv_PG``,
``Conv_PG_OPT``, ``NoRD``) crossed with uniform, tornado, transpose and
hotspot traffic on the 4x4 mesh - each produce a deterministic
event-stream digest
(per-kind counts + a SHA-256 over the canonical, pid-normalized event
stream).  The digests are committed under ``tests/goldens/`` and diffed
in CI: *any* behavioural drift in the pipeline, the bypass datapath or
the power-gate FSM changes at least one digest, turning silent timing
regressions into loud, reviewable diffs.

Usage::

    python -m repro.trace.golden --check            # diff against fixtures
    python -m repro.trace.golden --check --jobs 4   # same digests, parallel
    python -m repro.trace.golden --update           # regenerate fixtures

(or ``pytest tests/test_goldens.py [--update-goldens]``).

Digest stability across ``--jobs`` settings is by construction: packet
ids are normalized at export time, and every scenario is an independent
seeded design point, so worker scheduling cannot reorder a scenario's
event stream.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Tuple

from ..config import Design, small_config
from ..experiments.parallel import DesignPoint, SweepRunner, TrafficSpec
from .recorder import TraceSpec

#: Where fixtures live (``tests/goldens/`` at the repo root).
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "goldens"

#: Scenario pinning: change any of these and every fixture must be
#: regenerated with ``--update``.
RATE = 0.1
SEED = 3
WARMUP = 100
MEASURE = 600
TRAFFICS = ("uniform", "tornado", "transpose", "hotspot")

#: Fields compared between a fresh digest and its fixture.
_COMPARED = ("events", "recorded", "dropped", "counts", "sha256")


def scenario_name(design: str, kind: str) -> str:
    return f"{design.lower()}_{kind}"


def scenarios() -> List[Tuple[str, str, str]]:
    """``(name, design, traffic kind)`` for all pinned scenarios."""
    return [(scenario_name(design, kind), design, kind)
            for design in Design.ALL for kind in TRAFFICS]


def build_points(directory: Path) -> List[Tuple[str, DesignPoint]]:
    """The named design points, traced into ``directory``."""
    out = []
    for name, design, kind in scenarios():
        cfg = small_config(design, warmup=WARMUP, measure=MEASURE)
        traffic = TrafficSpec(kind=kind, rate=RATE, seed=SEED)
        trace = TraceSpec(directory=str(directory), basename=name)
        out.append((name, DesignPoint(cfg=cfg, traffic=traffic,
                                      trace=trace)))
    return out


def compute_digests(jobs: int = 1) -> Dict[str, Dict[str, object]]:
    """Run all scenarios and return ``name -> digest``."""
    with tempfile.TemporaryDirectory(prefix="repro-goldens-") as tmp:
        named = build_points(Path(tmp))
        runner = SweepRunner(jobs=jobs, use_cache=False)
        runner.run([point for _, point in named])
        digests = {}
        for name, _ in named:
            path = Path(tmp) / f"{name}.digest.json"
            digests[name] = json.loads(path.read_text())
        return digests


def fixture_path(name: str, directory: Path = GOLDEN_DIR) -> Path:
    return Path(directory) / f"{name}.json"


def update(jobs: int = 1, directory: Path = GOLDEN_DIR) -> List[str]:
    """Regenerate every fixture; returns the scenario names written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    digests = compute_digests(jobs=jobs)
    for name, digest in sorted(digests.items()):
        fixture_path(name, directory).write_text(
            json.dumps(digest, sort_keys=True, indent=1) + "\n")
    return sorted(digests)


def check(jobs: int = 1, directory: Path = GOLDEN_DIR) -> List[str]:
    """Diff fresh digests against the fixtures; returns mismatch lines
    (empty = clean)."""
    digests = compute_digests(jobs=jobs)
    problems: List[str] = []
    for name in sorted(digests):
        path = fixture_path(name, directory)
        if not path.is_file():
            problems.append(f"{name}: missing fixture {path} "
                            "(run --update)")
            continue
        want = json.loads(path.read_text())
        got = digests[name]
        for field in _COMPARED:
            if got.get(field) != want.get(field):
                problems.append(
                    f"{name}: {field} changed: fixture "
                    f"{want.get(field)!r} != fresh {got.get(field)!r}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace.golden",
        description="golden-trace digest regression harness")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="recompute digests and diff against fixtures")
    mode.add_argument("--update", action="store_true",
                      help="regenerate the fixtures in place")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (digests are identical "
                             "for any N)")
    parser.add_argument("--dir", default=str(GOLDEN_DIR), metavar="DIR",
                        help="fixture directory (default: tests/goldens)")
    args = parser.parse_args(argv)
    directory = Path(args.dir)
    if args.update:
        names = update(jobs=args.jobs, directory=directory)
        print(f"updated {len(names)} golden digests in {directory}/")
        return 0
    problems = check(jobs=args.jobs, directory=directory)
    if problems:
        print(f"golden-trace check FAILED ({len(problems)} mismatches):")
        for line in problems:
            print(f"  {line}")
        print("If the behaviour change is intentional, regenerate with "
              "`python -m repro.trace.golden --update` and review the "
              "fixture diff.")
        return 1
    print(f"golden-trace check passed ({len(scenarios())} scenarios)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

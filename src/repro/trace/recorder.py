"""The bounded event recorder and its exporters.

:class:`EventTrace` is what a :class:`repro.noc.network.Network` records
into when tracing is enabled.  Events land in a bounded ring buffer
(oldest evicted first), so a trace's memory footprint is capped by
``limit`` regardless of run length; per-kind counters cover the whole
run even when the ring wrapped.

Exported artifacts:

* **JSONL** - one canonical line-object per retained event, diffable
  with standard tools;
* **Chrome trace / Perfetto** - a ``traceEvents`` JSON that loads
  directly into https://ui.perfetto.dev (or ``chrome://tracing``):
  instant events per recorded event plus async spans for each packet's
  lifetime;
* **digest** - a compact, deterministic summary (per-kind counts + a
  SHA-256 over the canonical event stream) that the golden-trace
  regression harness commits under ``tests/goldens/`` and diffs in CI.

Packet ids are *normalized* at export time (dense ids in order of first
appearance in the stream) so digests and JSONL files are bit-stable
across process boundaries: the in-memory global packet-id counter
differs between ``--jobs 1`` and ``--jobs N`` schedules, the normalized
stream does not.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional

from .events import EVENT_NAMES, EventKind, TraceEvent

#: Default ring-buffer capacity (events), sized so the golden scenarios
#: and any small-mesh debugging run retain their full event stream.
DEFAULT_LIMIT = 1_000_000


@dataclass(frozen=True)
class TraceSpec:
    """Picklable description of a trace request (crosses worker
    processes with its :class:`repro.experiments.parallel.DesignPoint`).

    Deliberately *not* part of the design point's cache key: tracing is
    a pure observer, so the same point with and without a trace produces
    the same ``RunResult``.
    """

    #: Directory trace artifacts are written into.
    directory: str
    #: Ring-buffer capacity in events.
    limit: int = DEFAULT_LIMIT
    #: Also write a Chrome-trace/Perfetto JSON next to the JSONL.
    chrome: bool = False
    #: Artifact basename; when ``None`` the executor derives one from
    #: the design point (design, traffic, content hash).
    basename: Optional[str] = None

    def build(self) -> "EventTrace":
        return EventTrace(limit=self.limit)


class EventTrace:
    """Bounded ring buffer of :class:`TraceEvent` records."""

    __slots__ = ("limit", "_ring", "_seq", "counts")

    def __init__(self, limit: int = DEFAULT_LIMIT) -> None:
        if limit < 1:
            raise ValueError("trace limit must be >= 1")
        self.limit = limit
        self._ring: Deque[TraceEvent] = deque(maxlen=limit)
        self._seq = 0
        #: Per-kind event totals over the whole run (evicted included).
        self.counts: List[int] = [0] * len(EVENT_NAMES)

    # -- recording (the hot path) ---------------------------------------
    def record(self, cycle: int, kind: int, node: int, port: int = -1,
               vc: int = -1, pid: int = -1, flit: int = -1,
               info: int = 0) -> None:
        self._ring.append(TraceEvent(self._seq, cycle, kind, node, port,
                                     vc, pid, flit, info))
        self._seq += 1
        self.counts[kind] += 1

    # -- views -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def recorded(self) -> int:
        """Total events recorded, including any evicted from the ring."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted because the ring buffer was full."""
        return self._seq - len(self._ring)

    def events(self) -> List[TraceEvent]:
        """Retained events in record order."""
        return list(self._ring)

    def packet_events(self, pid: int) -> List[TraceEvent]:
        """Retained events of one packet, in record order."""
        return [e for e in self._ring if e.pid == pid]

    def pid_map(self) -> Dict[int, int]:
        """Raw pid -> dense normalized pid, by first appearance."""
        mapping: Dict[int, int] = {}
        for e in self._ring:
            if e.pid >= 0 and e.pid not in mapping:
                mapping[e.pid] = len(mapping)
        return mapping

    # -- exporters --------------------------------------------------------
    def canonical_lines(self) -> List[str]:
        """Canonical one-line forms with normalized pids (digest input)."""
        pids = self.pid_map()
        return [e.canonical(pids.get(e.pid, -1)) for e in self._ring]

    def write_jsonl(self, path) -> Path:
        """One JSON object per retained event; pids normalized."""
        path = Path(path)
        pids = self.pid_map()
        with path.open("w") as fh:
            for e in self._ring:
                fh.write(json.dumps({
                    "cycle": e.cycle,
                    "kind": EVENT_NAMES[e.kind],
                    "node": e.node,
                    "port": e.port,
                    "vc": e.vc,
                    "pid": pids.get(e.pid, -1),
                    "flit": e.flit,
                    "info": e.info,
                }, separators=(",", ":")) + "\n")
        return path

    def write_chrome(self, path) -> Path:
        """Chrome-trace JSON (loadable in Perfetto / chrome://tracing).

        Layout: one Perfetto "process" per node, with the node's events
        as instant marks on per-category tracks; packets additionally
        get async begin/end spans (NEW to tail SINK) so their lifetimes
        render as bars.
        """
        path = Path(path)
        pids = self.pid_map()
        out: List[dict] = [
            {"name": "process_name", "ph": "M", "pid": node,
             "args": {"name": f"node {node}"}}
            for node in sorted({e.node for e in self._ring})]
        first_seen: Dict[int, TraceEvent] = {}
        last_sink: Dict[int, TraceEvent] = {}
        for e in self._ring:
            npid = pids.get(e.pid, -1)
            out.append({
                "name": EVENT_NAMES[e.kind],
                "ph": "i",
                "s": "t",
                "ts": e.cycle,
                "pid": e.node,
                "tid": _track_for(e.kind),
                "args": {"port": e.port, "vc": e.vc, "pkt": npid,
                         "flit": e.flit, "info": e.info},
            })
            if e.pid >= 0:
                first_seen.setdefault(e.pid, e)
                if e.kind == EventKind.SINK:
                    last_sink[e.pid] = e
        for pid, first in first_seen.items():
            end = last_sink.get(pid)
            if end is None:
                continue
            npid = pids[pid]
            span = {"cat": "packet", "name": f"pkt{npid}",
                    "id": npid, "pid": first.node}
            out.append({**span, "ph": "b", "ts": first.cycle})
            out.append({**span, "ph": "e", "ts": end.cycle,
                        "pid": end.node})
        payload = {
            "traceEvents": out,
            "displayTimeUnit": "ns",
            "metadata": {"unit": "cycles",
                         "dropped_events": self.dropped},
        }
        path.write_text(json.dumps(payload, separators=(",", ":")))
        return path

    def digest(self) -> Dict[str, object]:
        """Deterministic per-run summary for golden-trace regression.

        ``sha256`` hashes the canonical (pid-normalized) event stream,
        so *any* reordering, addition or removal of events changes it;
        the per-kind counts make the nature of a diff legible before
        anyone opens the full JSONL.
        """
        blob = "\n".join(self.canonical_lines()).encode()
        return {
            "events": len(self._ring),
            "recorded": self.recorded,
            "dropped": self.dropped,
            "counts": {EVENT_NAMES[k]: c
                       for k, c in enumerate(self.counts) if c},
            "sha256": hashlib.sha256(blob).hexdigest(),
        }


def trace_digest(events: Iterable[TraceEvent]) -> Dict[str, object]:
    """Digest an event iterable (convenience for tests on raw lists)."""
    trace = EventTrace(limit=DEFAULT_LIMIT)
    for e in events:
        trace.record(e.cycle, e.kind, e.node, e.port, e.vc, e.pid,
                     e.flit, e.info)
    return trace.digest()


def _track_for(kind: int) -> str:
    """Perfetto track (thread) name grouping related event kinds."""
    if kind in (EventKind.PG_OFF, EventKind.PG_WAKE, EventKind.PG_ON,
                EventKind.PG_FAIL):
        return "power-gate"
    if kind in (EventKind.LATCH, EventKind.FWD):
        return "bypass"
    if kind in (EventKind.NEW, EventKind.INJ, EventKind.SINK):
        return "ni"
    return "pipeline"


def export_trace(trace: EventTrace, spec: TraceSpec, basename: str) -> Path:
    """Write ``basename.jsonl`` (+ ``.chrome.json`` when requested) and
    ``basename.digest.json`` under ``spec.directory``; returns the JSONL
    path."""
    directory = Path(spec.directory)
    directory.mkdir(parents=True, exist_ok=True)
    jsonl = trace.write_jsonl(directory / f"{basename}.jsonl")
    if spec.chrome:
        trace.write_chrome(directory / f"{basename}.chrome.json")
    digest_path = directory / f"{basename}.digest.json"
    digest_path.write_text(json.dumps(trace.digest(), sort_keys=True,
                                      indent=1) + "\n")
    return jsonl

"""Typed, slotted event records and the event taxonomy.

Every event carries the same compact record shape (one slotted object,
no dicts), with per-kind field semantics:

====== ============================== ======================================
kind   emitted by                     fields
====== ============================== ======================================
NEW    ``Network.inject_packet`` /    node=src, port=dst, info=length in
       ``retransmit_packet``          flits (retransmitted clones emit a
                                      fresh NEW at re-enqueue time)
INJ    ``NetworkInterface.            node, vc=allocated VC, flit, port=
       _commit_injection``            output port used, info=0 injection
                                      via the router's LOCAL port, 1 via
                                      the Bypass Outport (ring)
BW     ``Router.deliver``             buffer write (LT completion into an
                                      input VC): node, port=in_port, vc,
                                      flit
RC     ``Router.stage_rc``            route computed for a head:
                                      node, port=in_port, vc
VA     ``Router._commit_va``          VC allocated: node, port=out_port,
                                      vc=out_vc, info=1 if escape VC
SA     ``Router._traverse``           switch allocation granted and
                                      ST+LT launched: node, port=out_port,
                                      vc=out_vc, flit
WU_STALL ``Router.stage_sa``          head stalled one cycle in SA waiting
                                      for a gated neighbor's wakeup
                                      (conventional PG): node,
                                      port=out_port
LATCH  ``NetworkInterface.            bypass-latch write (LT completion
       latch_write``                  at an off router's Bypass Inport):
                                      node, vc, flit
FWD    ``NetworkInterface.            bypass re-inject through the Bypass
       _commit_forward``              Outport: node, port=ring outport,
                                      vc=out_vc, flit, info=1 when the
                                      aggressive single-cycle bypass fired
SINK   ``Network.sink_flit``          flit ejected at its destination:
                                      node, flit, info=1 when ejected
                                      straight from the bypass latch
PG_OFF ``Network._apply_pg_events``   router gated off: node
PG_WAKE  (same)                       wakeup started (off->waking): node;
                                      NoRD also reports the threshold
                                      trigger: vc=threshold,
                                      info=VC-request window count
PG_ON    (same)                       wakeup complete (waking->on): node
PG_FAIL  (same)                       hard-fail completed (fault
                                      injection): node
====== ============================== ======================================

Unused fields are -1 (``info`` defaults to 0).  ``seq`` is a per-trace
monotonic sequence number that makes event order total even within one
cycle, so a trace diff is deterministic.
"""

from __future__ import annotations

from typing import Dict


class EventKind:
    """Small-int event kinds (see the module docstring for semantics)."""

    NEW = 0
    INJ = 1
    BW = 2
    RC = 3
    VA = 4
    SA = 5
    WU_STALL = 6
    LATCH = 7
    FWD = 8
    SINK = 9
    PG_OFF = 10
    PG_WAKE = 11
    PG_ON = 12
    PG_FAIL = 13


EVENT_NAMES: Dict[int, str] = {
    EventKind.NEW: "NEW",
    EventKind.INJ: "INJ",
    EventKind.BW: "BW",
    EventKind.RC: "RC",
    EventKind.VA: "VA",
    EventKind.SA: "SA",
    EventKind.WU_STALL: "WU_STALL",
    EventKind.LATCH: "LATCH",
    EventKind.FWD: "FWD",
    EventKind.SINK: "SINK",
    EventKind.PG_OFF: "PG_OFF",
    EventKind.PG_WAKE: "PG_WAKE",
    EventKind.PG_ON: "PG_ON",
    EventKind.PG_FAIL: "PG_FAIL",
}

#: Kinds attached to a packet (``pid >= 0``).
PACKET_KINDS = frozenset({
    EventKind.NEW, EventKind.INJ, EventKind.BW, EventKind.RC, EventKind.VA,
    EventKind.SA, EventKind.WU_STALL, EventKind.LATCH, EventKind.FWD,
    EventKind.SINK,
})

#: Power-gate FSM transition kinds (``pid`` is -1).
PG_KINDS = frozenset({
    EventKind.PG_OFF, EventKind.PG_WAKE, EventKind.PG_ON, EventKind.PG_FAIL,
})


class TraceEvent:
    """One recorded event: a fixed-shape slotted record."""

    __slots__ = ("seq", "cycle", "kind", "node", "port", "vc", "pid",
                 "flit", "info")

    def __init__(self, seq: int, cycle: int, kind: int, node: int,
                 port: int = -1, vc: int = -1, pid: int = -1,
                 flit: int = -1, info: int = 0) -> None:
        self.seq = seq
        self.cycle = cycle
        self.kind = kind
        self.node = node
        self.port = port
        self.vc = vc
        self.pid = pid
        self.flit = flit
        self.info = info

    def canonical(self, pid: int) -> str:
        """The canonical one-line form (with ``pid`` already normalized)
        that the JSONL exporter and the digest both hash/emit.  ``seq``
        is deliberately excluded: it numbers *retained* ring-buffer
        slots, so it would differ between two traces whose ring limits
        differ even when the surviving events are identical."""
        return (f"{self.cycle} {EVENT_NAMES[self.kind]} n{self.node}"
                f" p{self.port} v{self.vc} pid{pid} f{self.flit}"
                f" i{self.info}")

    def __repr__(self) -> str:
        return (f"TraceEvent(seq={self.seq}, cycle={self.cycle}, "
                f"{EVENT_NAMES[self.kind]}, node={self.node}, "
                f"port={self.port}, vc={self.vc}, pid={self.pid}, "
                f"flit={self.flit}, info={self.info})")

"""Flit-level event tracing and latency decomposition.

This package is the simulator's observability layer (DESIGN.md section 7):

* :mod:`repro.trace.events` - the typed, slotted event records and the
  event taxonomy (pipeline stages, NI bypass datapath, link traversal,
  power-gate FSM transitions);
* :mod:`repro.trace.recorder` - :class:`EventTrace`, a bounded ring
  buffer the network records into, plus the JSONL / Chrome-trace
  (Perfetto) exporters and the per-run digest used by the golden-trace
  regression harness;
* :mod:`repro.trace.decompose` - reconstructs each delivered packet's
  event timeline into a latency decomposition (queueing + pipeline +
  wakeup-wait + bypass + link + serialization) that sums *exactly* to
  its measured end-to-end latency;
* :mod:`repro.trace.golden` - the golden-trace scenarios, fixture I/O
  and the ``python -m repro.trace.golden`` check/update CLI.

Tracing is strictly an observer: with no trace attached (the default)
every hook reduces to one attribute check, and a traced run's
:class:`repro.stats.collector.RunResult` is byte-identical to an
untraced one (asserted by ``tests/test_trace_identity.py`` and the
``trace-off-drift`` CI job).
"""

from .decompose import (LatencyDecomposition, decompose_packet,
                        decompose_trace, summarize)
from .events import EVENT_NAMES, EventKind, TraceEvent
from .recorder import (DEFAULT_LIMIT, EventTrace, TraceSpec, export_trace,
                       trace_digest)

__all__ = [
    "EventKind", "EVENT_NAMES", "TraceEvent",
    "DEFAULT_LIMIT", "EventTrace", "TraceSpec", "export_trace",
    "trace_digest",
    "LatencyDecomposition", "decompose_packet", "decompose_trace",
    "summarize",
]

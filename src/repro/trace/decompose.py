"""Latency decomposition: fold a packet's events into named components.

A delivered packet's end-to-end latency (``ejected_cycle -
created_cycle``, what the stats collector measures) is reconstructed
from its trace events as a *telescoping* sum over the head flit's
milestone timeline plus tail serialization:

* **queueing** - creation (NEW) to the head flit leaving the NI (INJ);
* **pipeline** - head waiting/advancing inside powered-on routers:
  buffer write (BW) to switch-allocation grant (SA), minus any
  wakeup-stall cycles;
* **wakeup** - head cycles stalled in SA waiting for a gated
  neighbor to wake (conventional power-gating's cumulative wakeup
  latency, the paper's Fig. 13 quantity);
* **bypass** - head time spent in NoRD's NI bypass datapath: latch
  residency until re-inject (FWD), latch-to-local ejection, and the
  latch-to-input-buffer hand-over when a router wakes mid-bypass;
* **link** - ST+LT wire time: every gap between a launch (INJ, SA,
  FWD) and the next arrival (BW, LATCH, SINK);
* **serialization** - head ejection to tail ejection (body/tail flits
  streaming out behind the head).

Because every component is the difference of consecutive milestone
timestamps on one flit's timeline (and the stall counter is a subset of
the enclosing pipeline segment), the components sum *exactly* to the
measured latency - asserted per packet by the hypothesis property test
``tests/test_trace_decompose.py`` across designs and seeds.

Only packets whose full event timeline is retained can be decomposed:
with a ring-buffer-limited trace, packets whose NEW was evicted report
``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .events import EventKind, TraceEvent
from .recorder import EventTrace


@dataclass
class LatencyDecomposition:
    """Per-packet latency split; all fields in cycles."""

    pid: int
    src: int
    dst: int
    length: int
    created: int
    ejected: int
    queueing: int = 0
    pipeline: int = 0
    wakeup: int = 0
    bypass: int = 0
    link: int = 0
    serialization: int = 0

    @property
    def total(self) -> int:
        return (self.queueing + self.pipeline + self.wakeup + self.bypass
                + self.link + self.serialization)

    @property
    def latency(self) -> int:
        """The end-to-end latency the components must sum to."""
        return self.ejected - self.created

    def as_dict(self) -> Dict[str, int]:
        return {
            "pid": self.pid, "src": self.src, "dst": self.dst,
            "length": self.length, "created": self.created,
            "ejected": self.ejected, "queueing": self.queueing,
            "pipeline": self.pipeline, "wakeup": self.wakeup,
            "bypass": self.bypass, "link": self.link,
            "serialization": self.serialization,
        }


#: Head-flit arrival kinds (an LT completion somewhere).
_ARRIVALS = (EventKind.BW, EventKind.LATCH)
#: Head-flit launch kinds (an ST start somewhere).
_LAUNCHES = (EventKind.INJ, EventKind.SA, EventKind.FWD)


def decompose_packet(events: List[TraceEvent]) -> Optional[
        LatencyDecomposition]:
    """Fold one packet's events (record order) into a decomposition.

    Returns None for packets that were not delivered (no tail SINK), or
    whose timeline is incomplete (NEW/INJ evicted from the ring buffer,
    or the packet was dropped/failed mid-flight).
    """
    new_ev: Optional[TraceEvent] = None
    inj_ev: Optional[TraceEvent] = None
    head_sink: Optional[TraceEvent] = None
    tail_sink: Optional[TraceEvent] = None
    length = None
    for e in events:
        if e.kind == EventKind.NEW:
            new_ev = e
            length = e.info
        elif e.kind == EventKind.INJ and inj_ev is None and e.flit == 0:
            inj_ev = e
        elif e.kind == EventKind.SINK:
            if e.flit == 0:
                head_sink = e
            if length is not None and e.flit == length - 1:
                tail_sink = e
    if (new_ev is None or inj_ev is None or head_sink is None
            or tail_sink is None):
        return None
    d = LatencyDecomposition(
        pid=new_ev.pid, src=new_ev.node, dst=new_ev.port, length=length,
        created=new_ev.cycle, ejected=tail_sink.cycle)
    d.queueing = inj_ev.cycle - new_ev.cycle
    # Walk the head flit's milestones, attributing each gap by the pair
    # of event kinds that bound it.
    current = inj_ev.cycle
    prev_kind = EventKind.INJ
    stalls = 0
    for e in events:
        if e.seq <= inj_ev.seq:
            continue
        if e.kind == EventKind.WU_STALL:
            stalls += 1
            continue
        if e.flit != 0:
            continue
        if e.kind in _ARRIVALS:
            gap = e.cycle - current
            if prev_kind == EventKind.LATCH:
                # Latch -> input-buffer hand-over at wakeup (BW recorded
                # at the wake cycle): time sat in the bypass latch.
                d.bypass += gap
            else:
                d.link += gap
        elif e.kind == EventKind.SA:
            gap = e.cycle - current
            d.wakeup += stalls
            d.pipeline += gap - stalls
            stalls = 0
        elif e.kind == EventKind.FWD:
            d.bypass += e.cycle - current
        elif e.kind == EventKind.SINK:
            gap = e.cycle - current
            if prev_kind == EventKind.LATCH:
                d.bypass += gap  # ejected straight from the bypass latch
            else:
                d.link += gap
        else:
            continue  # RC/VA: informational, not a milestone
        current = e.cycle
        prev_kind = e.kind
        if e is head_sink:
            break
    d.serialization = tail_sink.cycle - head_sink.cycle
    return d


def decompose_trace(trace: EventTrace) -> Dict[int, LatencyDecomposition]:
    """Decompose every delivered packet in a trace: pid -> components."""
    per_pid: Dict[int, List[TraceEvent]] = {}
    for e in trace.events():
        if e.pid >= 0:
            per_pid.setdefault(e.pid, []).append(e)
    out: Dict[int, LatencyDecomposition] = {}
    for pid, events in per_pid.items():
        d = decompose_packet(events)
        if d is not None:
            out[pid] = d
    return out


def summarize(decomps: Iterable[LatencyDecomposition]) -> Dict[str, float]:
    """Mean per-component cycles over a set of decompositions."""
    fields = ("queueing", "pipeline", "wakeup", "bypass", "link",
              "serialization")
    totals = {f: 0 for f in fields}
    n = 0
    for d in decomps:
        n += 1
        for f in fields:
            totals[f] += getattr(d, f)
    if n == 0:
        return {f: 0.0 for f in fields}
    return {f: totals[f] / n for f in fields}
